"""P6 `shard` -- sharded apply and incremental re-planning at estate scale.

Three claims, each gated:

* **Golden equivalence**: the interleaved sharded executor's apply is
  byte-identical to the single ``CriticalPathExecutor`` -- same
  simulated makespan, same final state JSON -- at every size run,
  including the 100k-resource scaling tier.
* **Speedup**: following the repo's speedup-measurement convention
  (``bench_p1_scale.py --reference``), the sharded apply is compared
  against the frozen pre-optimization executor from
  ``repro.deploy.reference``; ``--min-speedup`` gates the ratio.
  A pool-mode arm (``--workers N``) is also timed, but its
  parallel-speedup gate only arms when the host actually has ``N``
  cores (``--min-pool-speedup`` is skipped on smaller hosts -- the CI
  container has one core, where pool mode cannot win wall-clock).
* **Incremental re-plan**: a 1%-dirty decl patch through
  ``IncrementalSession.replan`` must beat the full re-plan by
  ``--min-incremental-speedup`` (default 10x).

CI runs the smoke tier::

    python benchmarks/bench_p6_shard.py --sizes 1000 --providers 4 \
        --reference --min-speedup 2.0 --out /tmp/BENCH_shard.json

The checked-in ``BENCH_shard.json`` is the full run
(``--sizes 10000,100000 --reference --workers 4``).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import re
import sys
import time
from typing import Any, Dict, List, Optional

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro import perf
from repro.cloud import CloudGateway
from repro.deploy import CriticalPathExecutor, IncrementalSession, ShardedExecutor
from repro.deploy.incremental import read_data_sources
from repro.deploy.reference import REFERENCE_FOR
from repro.graph import Planner, build_graph
from repro.graph.critical_path import clear_analysis_cache
from repro.lang import Configuration
from repro.state import StateDocument
from repro.workloads import scale_estate_sharded


def build_plan(graph, seed: int, synthetic: int):
    clear_analysis_cache()
    gateway = CloudGateway.simulated(seed=seed, synthetic=synthetic)
    planner = Planner(
        spec_lookup=gateway.try_spec,
        region_lookup=gateway.region_for,
        provider_lookup=gateway.provider_of,
    )
    state = StateDocument()
    data = read_data_sources(gateway, graph, state)
    t0 = time.perf_counter()
    plan = planner.plan(graph, state, data_values=data)
    return gateway, plan, time.perf_counter() - t0


def state_sha(result) -> str:
    return hashlib.sha256(result.state.to_json().encode()).hexdigest()


def content_sha(result) -> str:
    """Canonical state fingerprint: excludes timestamps/serial, so pool
    workers' legitimately-different wall-clock budgets don't show."""
    return result.state.content_hash()


def run_arm(graph, seed: int, synthetic: int, factory, label: str) -> Dict[str, Any]:
    """Plan + apply on a fresh simulated estate; returns timings and
    the final-state fingerprint for equivalence checks."""
    gateway, plan, plan_s = build_plan(graph, seed, synthetic)
    executor = factory(gateway)
    perf.reset()
    perf.enable()
    t0 = time.perf_counter()
    result = executor.apply(plan)
    wall = time.perf_counter() - t0
    snap = perf.snapshot()
    perf.disable()
    assert result.ok, f"{label}: apply failed: {result.failed}"
    row = {
        "arm": label,
        "n_changes": len(plan.changes),
        "plan_s": round(plan_s, 4),
        "apply_wall_s": round(wall, 4),
        "makespan_sim_s": round(result.makespan_s, 3),
        "api_calls": result.api_calls,
        "state_sha": state_sha(result),
        "content_sha": content_sha(result),
    }
    counters = snap["counters"]
    for key in (
        "shard.shards",
        "shard.cross_edges",
        "shard.dispatches",
        "shard.barrier_waits",
        "shard.parked_changes",
    ):
        if key in counters:
            row[key] = counters[key]
    merge = snap["timers"].get("shard.merge_ms")
    if merge:
        row["shard.merge_ms"] = round(merge["total_s"], 3)
    if hasattr(result, "mode"):
        row["mode"] = result.mode
        row["waves"] = result.waves
        row["overlapped"] = getattr(result, "overlapped", False)
    return row


def bench_incremental(
    source: str, seed: int, synthetic: int, dirty_frac: float
) -> Dict[str, Any]:
    """1%-dirty session re-plan vs what a non-incremental pipeline must
    do after the same edit: reparse the full source, rebuild the graph,
    and re-plan from scratch."""
    gateway = CloudGateway.simulated(seed=seed, synthetic=synthetic)
    state = StateDocument()
    session = IncrementalSession(gateway, source=source)
    session.plan(state)  # initial converge; not part of either arm

    vm_blocks = re.findall(
        r'resource "syn\d+_virtual_machine" "[^"]+" \{.*?\n\}', source, re.S
    )
    n_dirty = max(1, int(len(vm_blocks) * dirty_frac))
    step = max(1, len(vm_blocks) // n_dirty)
    dirty_blocks = vm_blocks[::step][:n_dirty]
    patch = "\n\n".join(
        block.replace('service = "', 'service = "edited-')
        for block in dirty_blocks
    )

    edited = source
    for block in dirty_blocks:
        edited = edited.replace(
            block, block.replace('service = "', 'service = "edited-')
        )
    t0 = time.perf_counter()
    graph = build_graph(Configuration.parse(edited))
    planner = Planner(
        spec_lookup=gateway.try_spec,
        region_lookup=gateway.region_for,
        provider_lookup=gateway.provider_of,
    )
    data = read_data_sources(gateway, graph, state)
    planner.plan(graph, state.copy(), data_values=data)
    full_s = time.perf_counter() - t0

    inc = session.replan(patch, state)
    assert inc.mode == "incremental", f"patch fell back to {inc.mode}"
    assert len(inc.dirty) == n_dirty
    return {
        "decls_total": len(vm_blocks),
        "decls_dirty": n_dirty,
        "scope_nodes": inc.scope_size,
        "full_replan_s": round(full_s, 4),
        "incremental_replan_s": round(inc.wall_s, 4),
        "speedup": round(full_s / max(inc.wall_s, 1e-9), 1),
    }


def bench(args: argparse.Namespace) -> Dict[str, Any]:
    rows: List[Dict[str, Any]] = []
    incremental: List[Dict[str, Any]] = []
    failures: List[str] = []
    cpus = os.cpu_count() or 1
    for size in args.sizes:
        source = scale_estate_sharded(
            size,
            providers=args.providers,
            cross_link_every=args.cross_link_every,
        )
        t0 = time.perf_counter()
        graph = build_graph(Configuration.parse(source))
        build_s = time.perf_counter() - t0
        print(f"size={size}: graph built in {build_s:.2f}s", file=sys.stderr)

        single = run_arm(
            graph, args.seed, args.providers,
            lambda gw: CriticalPathExecutor(gw, concurrency=args.concurrency),
            "critical-path",
        )
        sharded = run_arm(
            graph, args.seed, args.providers,
            lambda gw: ShardedExecutor(gw, concurrency=args.concurrency),
            "sharded",
        )
        for row in (single, sharded):
            row["size"] = size
            row["graph_build_s"] = round(build_s, 4)
        # golden equivalence: scheduling is invisible in every observable
        if sharded["makespan_sim_s"] != single["makespan_sim_s"]:
            failures.append(
                f"{size}: makespan diverged "
                f"({sharded['makespan_sim_s']} vs {single['makespan_sim_s']})"
            )
        if sharded["state_sha"] != single["state_sha"]:
            failures.append(f"{size}: final state diverged")
        rows.extend((single, sharded))

        if args.reference and size <= args.reference_max_size:
            ref = run_arm(
                graph, args.seed, args.providers,
                lambda gw: REFERENCE_FOR[CriticalPathExecutor](
                    gw, concurrency=args.concurrency
                ),
                "reference",
            )
            ref["size"] = size
            if ref["makespan_sim_s"] != sharded["makespan_sim_s"]:
                failures.append(f"{size}: reference makespan diverged")
            speedup = ref["apply_wall_s"] / max(sharded["apply_wall_s"], 1e-9)
            sharded["speedup_vs_reference"] = round(speedup, 2)
            rows.append(ref)
            if args.min_speedup and speedup < args.min_speedup:
                failures.append(
                    f"{size}: sharded speedup {speedup:.2f}x vs reference "
                    f"< gate {args.min_speedup}x"
                )

        if args.workers > 1:
            pool = run_arm(
                graph, args.seed, args.providers,
                lambda gw: ShardedExecutor(
                    gw, concurrency=args.concurrency, workers=args.workers
                ),
                "sharded-pool",
            )
            pool["size"] = size
            pool_speedup = single["apply_wall_s"] / max(
                pool["apply_wall_s"], 1e-9
            )
            pool["speedup_vs_single"] = round(pool_speedup, 2)
            rows.append(pool)
            # pool equivalence: identity-keyed id minting + the
            # timestamp-free content hash make worker scheduling
            # invisible in the canonical final state
            if pool["content_sha"] != single["content_sha"]:
                failures.append(
                    f"{size}: pool final state diverged "
                    f"({pool['content_sha'][:12]} vs "
                    f"{single['content_sha'][:12]})"
                )
            if (
                args.min_pool_speedup
                and cpus >= args.workers
                and pool_speedup < args.min_pool_speedup
            ):
                failures.append(
                    f"{size}: pool speedup {pool_speedup:.2f}x "
                    f"< gate {args.min_pool_speedup}x ({cpus} cpus)"
                )

        inc = bench_incremental(
            source, args.seed, args.providers, args.dirty_frac
        )
        inc["size"] = size
        incremental.append(inc)
        if (
            args.min_incremental_speedup
            and inc["speedup"] < args.min_incremental_speedup
        ):
            failures.append(
                f"{size}: incremental re-plan speedup {inc['speedup']}x "
                f"< gate {args.min_incremental_speedup}x"
            )

        for row in rows:
            if row["size"] != size:
                continue
            print(
                f"  {row['arm']:14s} n={row['n_changes']:7d} "
                f"apply={row['apply_wall_s']:8.2f}s "
                f"makespan={row['makespan_sim_s']:10.1f}s"
                + (
                    f" speedup={row['speedup_vs_reference']}x"
                    if "speedup_vs_reference" in row
                    else ""
                ),
                file=sys.stderr,
            )
        print(
            f"  incremental    dirty={inc['decls_dirty']}/{inc['decls_total']} "
            f"full={inc['full_replan_s']:.2f}s "
            f"inc={inc['incremental_replan_s']:.3f}s "
            f"speedup={inc['speedup']}x",
            file=sys.stderr,
        )

    return {
        "benchmark": "p6_shard",
        "workload": "scale_estate_sharded",
        "seed": args.seed,
        "providers": args.providers,
        "concurrency": args.concurrency,
        "workers": args.workers,
        "cpus": cpus,
        "sizes": args.sizes,
        "results": rows,
        "incremental": incremental,
        "failures": failures,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", default="10000,100000")
    parser.add_argument("--providers", type=int, default=4)
    parser.add_argument(
        "--cross-link-every",
        type=int,
        default=5,
        help="every k-th service depends on the previous provider's lb",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--concurrency", type=int, default=10)
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="also time a pool-mode arm with this many workers",
    )
    parser.add_argument(
        "--reference",
        action="store_true",
        help="run the frozen pre-optimization executor and gate the speedup",
    )
    parser.add_argument(
        "--reference-max-size",
        type=int,
        default=20000,
        help="skip the reference arm above this size (it is O(n^2)-slow)",
    )
    parser.add_argument("--min-speedup", type=float, default=2.0)
    parser.add_argument(
        "--min-pool-speedup",
        type=float,
        default=0.0,
        help="pool-mode wall-clock gate; only armed when cpu count >= --workers",
    )
    parser.add_argument("--min-incremental-speedup", type=float, default=10.0)
    parser.add_argument(
        "--dirty-frac",
        type=float,
        default=0.01,
        help="fraction of vm decls patched in the incremental arm",
    )
    parser.add_argument(
        "--out",
        default=os.path.join(
            os.path.dirname(os.path.abspath(__file__)), "BENCH_shard.json"
        ),
    )
    args = parser.parse_args(argv)
    args.sizes = [int(s) for s in str(args.sizes).split(",") if s]

    report = bench(args)
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}", file=sys.stderr)
    if report["failures"]:
        for line in report["failures"]:
            print(f"GATE FAILED: {line}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
