"""E10 `debugging` -- paper 3.5, "IaC debugging and repair".

Claim: provider error messages "do not even pinpoint the specific lines
of code as to which parameter is causing the anomaly"; a debugger should
correlate the cloud-level error to the IaC program and suggest fixes.
Arms: raw provider message (baseline -- zero localization by
construction) vs the cloudless debugger. Metrics per fault class:
resource localization, attribute localization, source-line pointer,
actionable fix suggested, and auto-repair success (fix applied, apply
retried, deployment green).
"""

import pytest

from repro.core import CloudlessEngine
from repro.debug import apply_diagnoses
from repro.lang import Configuration
from repro.workloads import ConfigMutator, hub_spoke, web_tier

from _support import Table, record

# fault classes that actually error out at the cloud (deploy-time bugs)
FAULT_KINDS = [
    "region_mismatch",
    "password_rule",
    "cidr_outside_parent",
    "duplicate_name",
    "bad_enum",
    "wrong_ref_type",
    "drop_required",
]
TRIALS = 4


def run_case(kind, trial):
    seed = hash((kind, trial)) % (2**31)
    source = web_tier() + hub_spoke(name="hub2")
    config = Configuration.parse(source)
    mutation = ConfigMutator(seed=seed).apply_kind(config, kind)
    engine = CloudlessEngine(seed=seed % 1000)
    try:
        result = engine.apply(config, validate_first=False, admit=False)
    except Exception:
        return None  # failed before the cloud (planner); out of scope here
    if result.apply is None or result.apply.ok:
        return None  # mutation turned out benign at the cloud level
    diagnoses = result.diagnoses
    primary = diagnoses[0] if diagnoses else None
    resource_hit = any(
        d.culprit_address.startswith(mutation.target) for d in diagnoses
    )
    attr_hit = any(
        d.culprit_attr == mutation.attr
        and d.culprit_address.startswith(mutation.target)
        for d in diagnoses
    )
    line_hit = any(d.span is not None for d in diagnoses)
    has_fix = any(d.fixes for d in diagnoses)

    # auto-repair: apply fixes and retry on fresh clouds
    repaired = False
    fresh_config = Configuration.parse(source)
    ConfigMutator(seed=seed).apply_kind(fresh_config, kind)
    outcomes = apply_diagnoses(fresh_config, diagnoses, min_confidence=0.8)
    if any(o.applied for o in outcomes):
        retry_engine = CloudlessEngine(seed=seed % 1000 + 1)
        try:
            retry = retry_engine.apply(
                fresh_config, validate_first=False, admit=False
            )
            repaired = retry.ok
        except Exception:
            repaired = False
    return {
        "resource_hit": resource_hit,
        "attr_hit": attr_hit,
        "line_hit": line_hit,
        "has_fix": has_fix,
        "repaired": repaired,
        "confidence": primary.confidence if primary else 0.0,
    }


def run_experiment():
    table = Table(
        "E10: error correlation per fault class (cloudless debugger)",
        [
            "fault",
            "cases",
            "resource_localized",
            "attr_localized",
            "line_pointer",
            "fix_suggested",
            "auto_repaired",
        ],
    )
    totals = {
        "cases": 0,
        "resource_hit": 0,
        "attr_hit": 0,
        "line_hit": 0,
        "has_fix": 0,
        "repaired": 0,
    }
    for kind in FAULT_KINDS:
        rows = [run_case(kind, t) for t in range(TRIALS)]
        rows = [r for r in rows if r is not None]
        if not rows:
            continue
        n = len(rows)
        counts = {
            key: sum(1 for r in rows if r[key])
            for key in ("resource_hit", "attr_hit", "line_hit", "has_fix", "repaired")
        }
        table.add(
            kind,
            n,
            f"{counts['resource_hit']}/{n}",
            f"{counts['attr_hit']}/{n}",
            f"{counts['line_hit']}/{n}",
            f"{counts['has_fix']}/{n}",
            f"{counts['repaired']}/{n}",
        )
        totals["cases"] += n
        for key in counts:
            totals[key] += counts[key]
    headline = {
        "resource_localization": totals["resource_hit"] / totals["cases"],
        "line_pointer_rate": totals["line_hit"] / totals["cases"],
        "fix_rate": totals["has_fix"] / totals["cases"],
        "repair_rate": totals["repaired"] / totals["cases"],
        "raw_message_localization": 0.0,  # provider messages carry no IaC location
    }
    return table, headline


def test_e10_debugging(benchmark):
    table, headline = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    record(benchmark, table, **headline)
    # the baseline (raw cloud message) localizes nothing by construction;
    # the debugger localizes the failing resource in (nearly) every case
    assert headline["resource_localization"] >= 0.9
    assert headline["line_pointer_rate"] == 1.0
    assert headline["fix_rate"] >= 0.7
    # a majority of deploy-time failures are fixed fully automatically
    assert headline["repair_rate"] >= 0.5


if __name__ == "__main__":
    print(run_experiment()[0].render())
