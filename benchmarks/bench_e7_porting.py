"""E7 `porting-quality` -- paper 3.1, "Porting non-IaC infrastructures".

Claim: Aztfy/Terraformer-style exporters "resort to porting with static,
pre-defined templates [whose] resulting IaC programs usually lack clear
structures"; a program optimizer should compact repeated resources into
count/for_each and modules, resolve ids into references, and prune
cloud-filled defaults -- optimizing for maintainability, not just
correctness. Arms: naive exporter vs structured importer (+ablations).
Metrics: LoC, blocks, hard-coded ids, references, repetition,
maintainability index, and round-trip fidelity (plan-is-noop).
"""

import pytest

from repro.cloud import CloudGateway
from repro.porting import (
    NaiveExporter,
    StructuredImporter,
    measure_quality,
    verify_fidelity,
)

from _support import Table, record


def flat_estate(gateway, vms):
    """One VPC with a ladder of subnets/NICs/VMs (count/for_each bait)."""
    vpc = gateway.execute(
        "create",
        "aws_vpc",
        attrs={"name": "prod", "cidr_block": "10.0.0.0/16"},
        region="us-east-1",
    )
    subnets = [
        gateway.execute(
            "create",
            "aws_subnet",
            attrs={
                "name": f"app-{i}",
                "vpc_id": vpc["id"],
                "cidr_block": f"10.0.{i}.0/24",
            },
            region="us-east-1",
        )
        for i in range(vms)
    ]
    nics = [
        gateway.execute(
            "create",
            "aws_network_interface",
            attrs={"name": f"nic-{i}", "subnet_id": subnets[i]["id"]},
            region="us-east-1",
        )
        for i in range(vms)
    ]
    for i in range(vms):
        gateway.execute(
            "create",
            "aws_virtual_machine",
            attrs={"name": f"web-{i}", "nic_ids": [nics[i]["id"]]},
            region="us-east-1",
        )
    return 1 + 3 * vms


def stacked_estate(gateway, stacks):
    """N isomorphic environment stacks (module-extraction bait)."""
    for i in range(stacks):
        vpc = gateway.execute(
            "create",
            "aws_vpc",
            attrs={"name": f"env{i}", "cidr_block": f"10.{i}.0.0/16"},
            region="us-east-1",
        )
        subnet = gateway.execute(
            "create",
            "aws_subnet",
            attrs={
                "name": f"env{i}-main",
                "vpc_id": vpc["id"],
                "cidr_block": f"10.{i}.1.0/24",
            },
            region="us-east-1",
        )
        gateway.execute(
            "create",
            "aws_database_instance",
            attrs={
                "name": f"env{i}-db",
                "engine": "postgres",
                "subnet_ids": [subnet["id"]],
            },
            region="us-east-1",
        )
    return 3 * stacks


def named_estate(gateway, envs=("alpha", "bravo", "charlie", "delta", "echo")):
    """Named (non-indexed) repeats -- the for_each target shape."""
    vpc = gateway.execute(
        "create",
        "aws_vpc",
        attrs={"name": "net", "cidr_block": "10.0.0.0/16"},
        region="us-east-1",
    )
    subnet = gateway.execute(
        "create",
        "aws_subnet",
        attrs={"name": "main", "vpc_id": vpc["id"], "cidr_block": "10.0.1.0/24"},
        region="us-east-1",
    )
    sizes = {"alpha": 100, "bravo": 500, "charlie": 250, "delta": 100, "echo": 50}
    for env in envs:
        gateway.execute(
            "create",
            "aws_s3_bucket",
            attrs={"name": f"logs-{env}"},
            region="us-east-1",
        )
        gateway.execute(
            "create",
            "aws_disk",
            attrs={"name": f"scratch-{env}", "size_gb": sizes[env]},
            region="us-east-1",
        )
    return 2 + 2 * len(envs)


ESTATES = {
    "flat ladder (16 res)": lambda gw: flat_estate(gw, vms=5),
    "flat ladder (31 res)": lambda gw: flat_estate(gw, vms=10),
    "repeated stacks (18 res)": lambda gw: stacked_estate(gw, stacks=6),
    "named repeats (12 res)": lambda gw: named_estate(gw),
}

ARMS = {
    "naive export (aztfy/terraformer)": lambda: NaiveExporter(),
    "structured import (cloudless)": lambda: StructuredImporter(),
    "  - no grouping": lambda: StructuredImporter(enable_grouping=False),
    "  - no modules": lambda: StructuredImporter(enable_modules=False),
}


def run_experiment():
    table = Table(
        "E7: ported-program quality, naive vs structured importer",
        [
            "estate",
            "arm",
            "loc",
            "blocks",
            "hard_ids",
            "refs",
            "modules",
            "maintainability",
            "fidelity",
        ],
    )
    headline = {}
    for estate_name, build in ESTATES.items():
        for arm_name, make in ARMS.items():
            gateway = CloudGateway.simulated(seed=700)
            build(gateway)
            importer = make()
            project = (
                importer.export(gateway)
                if isinstance(importer, NaiveExporter)
                else importer.import_estate(gateway)
            )
            metrics = measure_quality(project)
            fidelity = verify_fidelity(project)
            table.add(
                estate_name,
                arm_name,
                metrics.loc,
                metrics.blocks,
                metrics.hardcoded_ids,
                metrics.reference_count,
                metrics.module_count,
                metrics.maintainability,
                fidelity.ok,
            )
            key = f"{estate_name}|{arm_name.strip()}"
            headline[f"{key}|loc"] = metrics.loc
            headline[f"{key}|maint"] = round(metrics.maintainability, 1)
            headline[f"{key}|fidelity"] = fidelity.ok
    return table, headline


def test_e7_porting(benchmark):
    table, headline = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    record(benchmark, table, **headline)
    naive = "naive export (aztfy/terraformer)"
    smart = "structured import (cloudless)"
    for estate in ESTATES:
        key_n, key_s = f"{estate}|{naive}", f"{estate}|{smart}"
        assert headline[f"{key_n}|fidelity"] and headline[f"{key_s}|fidelity"]
        assert headline[f"{key_s}|loc"] < headline[f"{key_n}|loc"]
        assert headline[f"{key_s}|maint"] > headline[f"{key_n}|maint"] + 15
    # on the big ladder the compaction is dramatic
    big = "flat ladder (31 res)"
    assert headline[f"{big}|{smart}|loc"] < headline[f"{big}|{naive}|loc"] / 3
    # module extraction carries the stacked estate
    stacks = "repeated stacks (18 res)"
    assert (
        headline[f"{stacks}|{smart}|loc"]
        < headline[f"{stacks}|- no modules|loc"]
    )
    # named repeats compact via for_each
    named = "named repeats (12 res)"
    assert headline[f"{named}|{smart}|loc"] < headline[f"{named}|{naive}|loc"] / 1.5


if __name__ == "__main__":
    print(run_experiment()[0].render())
