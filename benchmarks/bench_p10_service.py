"""P10 `serve` -- multi-tenant admission control under 2x overload.

Drives the :class:`~repro.service.ControlPlaneService` with a seeded
synthetic tenant mix (steady tenants plus one adversarial noisy
neighbor at low priority) at roughly **twice** the measured apply-pool
capacity, then checks the overload contract:

* **Zero hangs**: every submitted request resolves, and every non-200
  response carries a typed rejection reason (429/503/504 family).
* **Shedding engaged**: at 2x capacity the admission tier must
  actually shed (a bench that never sheds is not probing overload).
* **Bounded tail**: p99 end-to-end latency of completed requests stays
  under ``--gate-p99`` seconds -- queueing is bounded by the admission
  queue, not unbounded collapse.
* **Fairness**: max/min goodput across the *steady* tenants stays
  under ``--gate-fairness`` (default 2.0) despite the noisy neighbor
  offering 8x their rate.
* **Isolation**: after the storm, every tenant's estate must converge
  to a fresh single-tenant baseline engine's canonical state -- zero
  cross-tenant bleed, byte-for-byte.

Capacity is calibrated in-process first (sequential no-op applies
through the service), so the 2x point tracks the machine.

CI runs the short tier::

    python benchmarks/bench_p10_service.py --duration 1.0 \
        --out /tmp/BENCH_service.json

The checked-in ``BENCH_service.json`` is the default 2-second run.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import shutil
import sys
import tempfile
import time
from typing import Any, Dict, List, Optional

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.chaos.invariants import canonical_state
from repro.core.engine import CloudlessEngine
from repro.service import ControlPlaneService, ServicePolicy, TenantQuota
from repro.service.core import _tenant_seed
from repro.workloads import (
    LatencyHistogram,
    goodput_fairness_ratio,
    mixed_arrivals,
    tenant_mix,
    web_tier,
)

SOURCES = web_tier(web_vms=1, app_vms=0, with_lb=False, with_db=False)


async def calibrate(root: str, pool: int, samples: int = 12) -> float:
    """Sequential no-op applies through the service -> capacity rps."""
    service = ControlPlaneService(
        root, instance="calibrate", policy=ServicePolicy(apply_pool=pool)
    )
    await service.start()
    await service.request("cal", "apply", payload={"sources": SOURCES})
    costs: List[float] = []
    for _ in range(samples):
        response = await service.request(
            "cal", "apply", payload={"sources": SOURCES}
        )
        assert response.ok, response.reason
        costs.append(response.service_s)
    await service.stop()
    costs.sort()
    median = costs[len(costs) // 2]
    return pool / max(1e-4, median)


async def storm(
    root: str, args: argparse.Namespace, capacity_rps: float
) -> Dict[str, Any]:
    offered_rps = capacity_rps * args.overload
    # 4 steady + 1 noisy at 8x a steady tenant's rate: steady tenants
    # carry 4/12 of the offered load, the adversary carries 8/12
    profiles = tenant_mix(
        steady=4, noisy=1, base_rate_rps=offered_rps / 12.0,
        noisy_factor=8.0, seed=args.seed,
    )
    schedule = mixed_arrivals(
        profiles, duration_s=args.duration, seed=args.seed
    )
    policy = ServicePolicy(
        apply_pool=args.pool,
        max_queue_depth=args.max_queue,
        default_deadline_s=args.deadline_s,
        default_quota=TenantQuota(
            rate_rps=max(50.0, offered_rps / 3.0),
            burst=max(20.0, offered_rps / 6.0),
            max_pending=16,
        ),
    )
    service = ControlPlaneService(root, instance="bench", policy=policy)
    await service.start()

    started = service.clock()
    futures = []
    for arrival in schedule:
        delay = arrival.t - (service.clock() - started)
        if delay > 0:
            await asyncio.sleep(delay)
        futures.append(
            await service.submit(
                arrival.tenant,
                arrival.op,
                payload={"sources": SOURCES},
                priority=arrival.priority,
            )
        )
    responses = await asyncio.gather(*futures)
    stats = service.stats()

    # -- post-storm guaranteed convergence pass (per tenant) -------------
    convergence: Dict[str, bool] = {}
    for profile in profiles:
        ok = False
        for _ in range(8):  # ladder needs a few ticks to step down
            final = await service.request(
                profile.tenant, "apply", payload={"sources": SOURCES},
                priority=1,
            )
            if final.ok:
                ok = True
                break
        if not ok:
            convergence[profile.tenant] = False
            continue
        baseline = CloudlessEngine(seed=_tenant_seed(profile.tenant))
        baseline.apply(SOURCES)
        convergence[profile.tenant] = (
            canonical_state(service.sessions[profile.tenant].engine)
            == canonical_state(baseline)
        )
    await service.stop()

    completed = LatencyHistogram()
    untyped = 0
    statuses: Dict[int, int] = {}
    for response in responses:
        statuses[response.status] = statuses.get(response.status, 0) + 1
        if response.ok:
            completed.observe(response.queued_s + response.service_s)
        elif not response.reason:
            untyped += 1
    steady = [p.tenant for p in profiles if p.kind == "steady"]
    steady_goodput = {
        t: stats["goodput"].get(t, 0) for t in steady
    }
    return {
        "offered_rps": round(offered_rps, 1),
        "arrivals": len(schedule),
        "answered": len(responses),
        "untyped": untyped,
        "statuses": {str(k): v for k, v in sorted(statuses.items())},
        "completed": stats["completed"],
        "shed_total": stats["shed_total"],
        "shed": stats["shed"],
        "mode_transitions": stats["mode_transitions"],
        "final_mode": stats["mode"],
        "goodput": stats["goodput"],
        "steady_fairness": round(
            goodput_fairness_ratio(steady_goodput), 3
        ),
        "p50_s": completed.p50,
        "p99_s": completed.p99,
        "p999_s": completed.p999,
        "converged": convergence,
    }


def bench(args: argparse.Namespace) -> Dict[str, Any]:
    root = tempfile.mkdtemp(prefix="bench-p10-")
    try:
        wall0 = time.perf_counter()
        capacity_rps = asyncio.run(
            calibrate(os.path.join(root, "cal"), args.pool)
        )
        print(
            f"  calibrated capacity ~{capacity_rps:.0f} rps "
            f"(pool={args.pool})",
            file=sys.stderr,
        )
        result = asyncio.run(
            storm(os.path.join(root, "storm"), args, capacity_rps)
        )
        wall = time.perf_counter() - wall0
    finally:
        shutil.rmtree(root, ignore_errors=True)
    return {
        "benchmark": "p10_service_overload",
        "pool": args.pool,
        "duration_s": args.duration,
        "overload": args.overload,
        "capacity_rps": round(capacity_rps, 1),
        "wall_s": round(wall, 2),
        **result,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--pool", type=int, default=4)
    parser.add_argument("--duration", type=float, default=2.0)
    parser.add_argument("--overload", type=float, default=2.0)
    parser.add_argument("--max-queue", type=int, default=64)
    parser.add_argument("--deadline-s", type=float, default=20.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--gate-p99", type=float, default=10.0)
    parser.add_argument("--gate-fairness", type=float, default=2.0)
    parser.add_argument(
        "--out",
        default=os.path.join(
            os.path.dirname(os.path.abspath(__file__)), "BENCH_service.json"
        ),
    )
    args = parser.parse_args(argv)

    report = bench(args)
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.out}", file=sys.stderr)

    failures: List[str] = []
    if report["answered"] != report["arrivals"]:
        failures.append(
            f"{report['arrivals'] - report['answered']} request(s) hung"
        )
    if report["untyped"]:
        failures.append(
            f"{report['untyped']} rejection(s) carried no typed reason"
        )
    if report["shed_total"] == 0:
        failures.append(
            "no requests shed at 2x capacity (overload not engaged)"
        )
    if report["p99_s"] > args.gate_p99:
        failures.append(
            f"completed p99 {report['p99_s']:.3f}s > gate {args.gate_p99}s"
        )
    if report["steady_fairness"] > args.gate_fairness:
        failures.append(
            f"steady-tenant fairness {report['steady_fairness']} "
            f"> gate {args.gate_fairness}"
        )
    stranded = sorted(
        t for t, ok in report["converged"].items() if not ok
    )
    if stranded:
        failures.append(
            f"tenant(s) diverged from single-tenant baseline: {stranded}"
        )
    for failure in failures:
        print(f"GATE FAILED: {failure}", file=sys.stderr)
    print(
        f"  offered={report['offered_rps']}rps completed="
        f"{report['completed']} shed={report['shed_total']} "
        f"p99={report['p99_s']:.3f}s fairness={report['steady_fairness']}",
        file=sys.stderr,
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
